"""Streaming sweeps: durability, crash-resume differentials, byte-identity.

The contract under test (ISSUE 3 tentpole, extended by ISSUE 5): a sweep
interrupted after ``k`` of ``n`` points resumes with exactly ``n - k``
executions, and the final artifact set is byte-identical to an uninterrupted
run, serial or parallel — compressed artifacts included (their decompressed
bytes equal the uncompressed run's exactly).  ``index.jsonl`` is the
append-only completion log and is deliberately excluded from the identity
(it records completion order, which crashes and worker counts change);
``MANIFEST.json`` is compared through
:func:`~repro.scenarios.stream.strip_costs` because its per-entry
``wall_clock_s``/``step_cost_s`` columns are timing observations.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios
from repro.scenarios.artifacts import save_run
from repro.scenarios.runner import execute_spec
from repro.scenarios.stream import (
    COST_KEYS,
    INDEX_NAME,
    MANIFEST_NAME,
    SweepStream,
    order_most_expensive_first,
    strip_costs,
)
from repro.util.validation import ValidationError

BASE = ScenarioSpec(
    name="stream-test",
    healer="xheal",
    healer_kwargs={"kappa": 4},
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 16, "degree": 4},
    timesteps=5,
    metric_every=3,
    exact_expansion_limit=0,
    stretch_sample_pairs=20,
    seed=3,
)

SWEEP = SweepSpec(base=BASE, axes={"timesteps": [3, 5], "healer_kwargs.kappa": [2, 4]})


def canonical_files(directory: Path):
    """The byte-identity surface of a sweep directory.

    Artifact files compare byte-for-byte; the manifest compares with its
    cost columns stripped (they are wall-clock observations, the only
    legitimately nondeterministic bytes in a finished directory); the
    completion log is excluded entirely.
    """
    directory = Path(directory)
    files = {
        path.name: path.read_bytes()
        for path in directory.iterdir()
        if path.name not in (INDEX_NAME, MANIFEST_NAME)
    }
    manifest = directory / MANIFEST_NAME
    if manifest.is_file():
        files[MANIFEST_NAME] = strip_costs(json.loads(manifest.read_text()))
    return files


def test_streamed_artifacts_match_buffered_save_run(tmp_path):
    specs = SWEEP.expand()
    result = run_scenarios(specs, stream_to=tmp_path / "stream")
    assert result.executed == len(specs) and result.skipped == 0
    assert [p.name for p in result.paths] == sorted(p.name for p in result.paths)
    for index, spec in enumerate(specs):
        buffered = save_run(execute_spec(spec), tmp_path / f"buffered-{index}.jsonl")
        assert buffered.read_bytes() == result.paths[index].read_bytes()


def test_parallel_stream_identical_to_serial(tmp_path):
    specs = SWEEP.expand()
    serial = run_scenarios(specs, workers=1, stream_to=tmp_path / "serial")
    parallel = run_scenarios(specs, workers=3, stream_to=tmp_path / "parallel")
    assert serial.total == parallel.total == len(specs)
    assert canonical_files(serial.directory) == canonical_files(parallel.directory)


@pytest.mark.parametrize("workers", [1, 2])
def test_resume_after_partial_run_executes_exactly_the_missing_points(tmp_path, workers):
    specs = SWEEP.expand()
    n, k = len(specs), 2
    full = run_scenarios(specs, workers=workers, stream_to=tmp_path / "full")

    # "Crash" after k points: stream only a prefix, then resume the full grid.
    run_scenarios(specs[:k], stream_to=tmp_path / "crash")
    resumed = run_scenarios(specs, workers=workers, resume=tmp_path / "crash")
    assert resumed.executed == n - k
    assert resumed.skipped == k
    assert canonical_files(full.directory) == canonical_files(resumed.directory)


def test_resume_counts_real_executions(tmp_path, monkeypatch):
    """The n-k guarantee counts actual execute_spec calls, not bookkeeping."""
    import repro.scenarios.runner as runner_module

    specs = SWEEP.expand()
    run_scenarios(specs[:3], stream_to=tmp_path / "dir")
    calls = []
    real = runner_module.execute_spec
    monkeypatch.setattr(
        runner_module, "execute_spec", lambda spec: calls.append(spec.name) or real(spec)
    )
    result = run_scenarios(specs, resume=tmp_path / "dir")
    assert calls == [spec.name for spec in specs[3:]]
    assert result.executed == len(specs) - 3


def test_resume_after_artifact_deletion_reruns_only_that_point(tmp_path):
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "full")
    victim = full.paths[1]
    reference = victim.read_bytes()
    victim.unlink()
    resumed = run_scenarios(specs, resume=tmp_path / "full")
    assert resumed.executed == 1 and resumed.skipped == len(specs) - 1
    assert victim.read_bytes() == reference


def test_resume_tolerates_torn_index_tail_and_tampered_artifact(tmp_path):
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "full")
    pristine = canonical_files(full.directory)

    # Simulate a crash mid-append: garbage half-line at the index tail.
    index = full.index_path
    index.write_bytes(index.read_bytes() + b'{"index": 99, "finger')
    # And a tampered artifact whose spec no longer matches its fingerprint.
    tampered = full.paths[0]
    lines = tampered.read_text().splitlines()
    spec_line = json.loads(lines[0])
    spec_line["data"]["seed"] = 999
    tampered.write_text("\n".join([json.dumps(spec_line, sort_keys=True)] + lines[1:]) + "\n")

    resumed = run_scenarios(specs, resume=tmp_path / "full")
    assert resumed.executed == 1 and resumed.skipped == len(specs) - 1
    assert canonical_files(resumed.directory) == pristine


def test_resume_detects_tampering_beyond_the_spec_line(tmp_path):
    """The index's whole-file hash catches a flipped digit anywhere."""
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "full")
    pristine = canonical_files(full.directory)

    tampered = full.paths[2]
    lines = tampered.read_text().splitlines()
    summary_line = json.loads(lines[1])
    assert summary_line["kind"] == "summary"
    summary_line["data"]["edges"] += 1
    tampered.write_text("\n".join([lines[0], json.dumps(summary_line, sort_keys=True)] + lines[2:]) + "\n")

    resumed = run_scenarios(specs, resume=tmp_path / "full")
    assert resumed.executed == 1 and resumed.skipped == len(specs) - 1
    assert canonical_files(resumed.directory) == pristine


def test_resume_with_a_different_sweep_warns_about_orphan_points(tmp_path):
    """Resuming the wrong directory must be loud, not silently mixed."""
    specs = SWEEP.expand()
    run_scenarios(specs[:2], stream_to=tmp_path / "dir")
    other = [BASE.with_overrides(name="other-sweep", timesteps=4)]
    with pytest.warns(RuntimeWarning, match="not part of this sweep"):
        result = run_scenarios(other, resume=tmp_path / "dir")
    assert result.executed == 1
    # The manifest covers only the resumed grid; orphan artifacts survive.
    manifest = json.loads(result.manifest_path.read_text())
    assert manifest["points"] == 1
    assert len(list((tmp_path / "dir").glob("0*.jsonl"))) == 3


def test_stream_to_refuses_to_clobber_an_existing_stream(tmp_path):
    specs = SWEEP.expand()
    run_scenarios(specs[:1], stream_to=tmp_path / "dir")
    with pytest.raises(ValidationError, match="resume"):
        run_scenarios(specs, stream_to=tmp_path / "dir")


def test_streamed_sweep_rejects_duplicate_points(tmp_path):
    spec = BASE.with_overrides(timesteps=3)
    with pytest.raises(ValidationError, match="duplicate fingerprints"):
        run_scenarios([spec, spec], stream_to=tmp_path / "dir")
    # The buffered path still allows duplicates (no identity to collide on).
    records = run_scenarios([spec, spec])
    assert records[0] == records[1]


def test_finalize_refuses_incomplete_stream(tmp_path):
    specs = SWEEP.expand()
    stream = SweepStream(tmp_path / "dir")
    stream.record(0, execute_spec(specs[0]))
    stream.close()
    with pytest.raises(ValidationError, match="no recorded artifact"):
        stream.finalize(specs)
    assert not (tmp_path / "dir" / MANIFEST_NAME).exists()


def test_manifest_lists_points_in_submission_order(tmp_path):
    specs = SWEEP.expand()
    result = run_scenarios(specs, workers=2, stream_to=tmp_path / "dir")
    manifest = json.loads(result.manifest_path.read_text())
    assert manifest["points"] == len(specs)
    assert [entry["index"] for entry in manifest["entries"]] == list(range(len(specs)))
    assert [entry["fingerprint"] for entry in manifest["entries"]] == [
        spec.fingerprint() for spec in specs
    ]


def test_buffered_path_unchanged(tmp_path):
    """No stream args -> the PR-2 contract: list[RunRecord] in spec order."""
    specs = SWEEP.expand()[:2]
    records = run_scenarios(specs)
    assert [record.spec for record in records] == specs


# -- compression (ISSUE 5) ----------------------------------------------------


def test_compressed_stream_decompresses_to_the_uncompressed_bytes(tmp_path):
    specs = SWEEP.expand()
    plain = run_scenarios(specs, stream_to=tmp_path / "plain")
    packed = run_scenarios(specs, stream_to=tmp_path / "gz", compress=True)
    assert [path.name for path in packed.paths] == [
        path.name + ".gz" for path in plain.paths
    ]
    for plain_path, packed_path in zip(plain.paths, packed.paths):
        assert gzip.decompress(packed_path.read_bytes()) == plain_path.read_bytes()
    manifest = json.loads(packed.manifest_path.read_text())
    assert manifest["compressed"] is True


def test_compressed_resume_autodetects_and_is_byte_identical(tmp_path):
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "full", compress=True)
    run_scenarios(specs[:2], stream_to=tmp_path / "crash", compress=True)
    # No compress argument: the resume must detect the .gz encoding itself.
    resumed = run_scenarios(specs, resume=tmp_path / "crash")
    assert resumed.executed == len(specs) - 2
    assert canonical_files(full.directory) == canonical_files(resumed.directory)


def test_resume_refuses_to_mix_encodings(tmp_path):
    specs = SWEEP.expand()
    run_scenarios(specs[:2], stream_to=tmp_path / "dir")
    with pytest.raises(ValidationError, match="mix encodings"):
        run_scenarios(specs, resume=tmp_path / "dir", compress=True)


def test_tampered_compressed_artifact_is_rerun(tmp_path):
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "dir", compress=True)
    pristine = canonical_files(full.directory)
    victim = full.paths[1]
    victim.write_bytes(b"\x1f\x8b not actually gzip")
    resumed = run_scenarios(specs, resume=tmp_path / "dir")
    assert resumed.executed == 1 and resumed.skipped == len(specs) - 1
    assert canonical_files(resumed.directory) == pristine


# -- replicates (ISSUE 5) -----------------------------------------------------

REPLICATED = SweepSpec(base=BASE, axes={"timesteps": [3, 5]}, replicates=2)


def test_replicates_expand_into_distinctly_seeded_points():
    specs = REPLICATED.expand()
    assert [spec.name for spec in specs] == [
        "stream-test[timesteps=3][rep=0]",
        "stream-test[timesteps=3][rep=1]",
        "stream-test[timesteps=5][rep=0]",
        "stream-test[timesteps=5][rep=1]",
    ]
    assert len({spec.seed for spec in specs}) == len(specs)
    assert len({spec.fingerprint() for spec in specs}) == len(specs)


def test_replicate_ids_are_threaded_into_index_and_manifest(tmp_path):
    result = run_scenarios(REPLICATED.expand(), stream_to=tmp_path / "dir")
    entries = [json.loads(line) for line in result.index_path.read_text().splitlines()]
    assert sorted(entry["replicate"] for entry in entries) == [0, 0, 1, 1]
    manifest = json.loads(result.manifest_path.read_text())
    assert [entry["replicate"] for entry in manifest["entries"]] == [0, 1, 0, 1]


def test_replicates_refuse_a_seed_axis():
    with pytest.raises(ValidationError, match="seed"):
        SweepSpec(base=BASE, axes={"seed": [1, 2]}, replicates=2).validate()


def test_replicates_allow_an_axis_free_sweep(tmp_path):
    sweep = SweepSpec(base=BASE.with_overrides(timesteps=3), axes={}, replicates=3)
    specs = sweep.expand()
    assert [spec.name for spec in specs] == [
        "stream-test[rep=0]",
        "stream-test[rep=1]",
        "stream-test[rep=2]",
    ]
    with pytest.raises(ValidationError, match="at least one axis"):
        SweepSpec(base=BASE, axes={}).validate()


# -- cost columns and cost-aware resume (ISSUE 5) -----------------------------


def test_index_and_manifest_record_cost_columns(tmp_path):
    result = run_scenarios(SWEEP.expand(), stream_to=tmp_path / "dir")
    entries = [json.loads(line) for line in result.index_path.read_text().splitlines()]
    manifest = json.loads(result.manifest_path.read_text())
    for entry in entries + manifest["entries"]:
        assert entry["wall_clock_s"] > 0
        assert entry["step_cost_s"] > 0
    for index_entry in entries:
        assert index_entry["step_cost_s"] == pytest.approx(
            index_entry["wall_clock_s"] / index_entry["timesteps"]
        )
    assert set(COST_KEYS) <= set(manifest["entries"][0])
    assert not set(COST_KEYS) & set(strip_costs(manifest)["entries"][0])


def _rewrite_costs(index_path: Path, costs: dict[str, float]) -> None:
    """Assign wall_clock_s per label in an existing index (test helper)."""
    lines = []
    for line in index_path.read_text().splitlines():
        entry = json.loads(line)
        entry["wall_clock_s"] = costs[entry["label"]]
        entry["step_cost_s"] = entry["wall_clock_s"] / entry["timesteps"]
        lines.append(json.dumps(entry, sort_keys=True))
    index_path.write_text("\n".join(lines) + "\n")


def test_resume_schedules_missing_points_most_expensive_first(tmp_path, monkeypatch):
    """Estimates come from completed neighbors along the varying axes."""
    import repro.scenarios.runner as runner_module

    specs = SWEEP.expand()
    # Grid order (sorted axes: healer_kwargs.kappa, then timesteps):
    #   0: kappa=2,t=3   1: kappa=2,t=5   2: kappa=4,t=3   3: kappa=4,t=5
    run_scenarios([specs[0], specs[1]], stream_to=tmp_path / "dir")
    _rewrite_costs(
        tmp_path / "dir" / INDEX_NAME,
        {specs[0].label: 1.0, specs[1].label: 9.0},
    )
    order = []
    real = runner_module.execute_spec
    monkeypatch.setattr(
        runner_module, "execute_spec", lambda spec: order.append(spec.name) or real(spec)
    )
    run_scenarios(specs, resume=tmp_path / "dir")
    # Point 3 differs from the completed t=5 point only along kappa (cost 9);
    # point 2 neighbors the t=3 point (cost 1) -> expensive first.
    assert order == [specs[3].name, specs[2].name]


def test_cost_ordering_falls_back_gracefully_without_costs():
    specs = SWEEP.expand()
    fingerprints = [spec.fingerprint() for spec in specs]
    completed = {fingerprints[0]: {"artifact": "x", "wall_clock_s": None}}
    assert order_most_expensive_first(specs, fingerprints, completed, [1, 2, 3]) == [1, 2, 3]


def test_cost_ordering_ignores_poisoned_costs():
    """ISSUE 10 bugfix: a torn or hand-edited index line can carry any JSON
    number — NaN, inf, or a negative wall clock — and one such entry used
    to hijack the whole resume schedule (inf pins its neighbors first, NaN
    poisons every mean it touches)."""
    specs = SWEEP.expand()
    fingerprints = [spec.fingerprint() for spec in specs]
    # Grid order: 0: kappa=2,t=3  1: kappa=2,t=5  2: kappa=4,t=3  3: kappa=4,t=5
    for poison in (float("inf"), float("nan"), -5.0):
        completed = {
            fingerprints[0]: {"artifact": "a", "wall_clock_s": 9.0},
            fingerprints[1]: {"artifact": "b", "wall_clock_s": poison},
        }
        # The poisoned neighbor is ignored: point 3 falls back to the mean
        # of the finite costs (9.0), point 2 estimates from its clean
        # neighbor (9.0) — a tie, so submission order is kept.
        assert order_most_expensive_first(specs, fingerprints, completed, [2, 3]) == [2, 3]
    # Sanity: the same shape with a *finite* expensive neighbor still reorders.
    completed = {
        fingerprints[0]: {"artifact": "a", "wall_clock_s": 1.0},
        fingerprints[1]: {"artifact": "b", "wall_clock_s": 9.0},
    }
    assert order_most_expensive_first(specs, fingerprints, completed, [2, 3]) == [3, 2]


def test_resume_with_a_poisoned_index_still_converges(tmp_path, monkeypatch):
    """End to end: non-finite recorded costs must not break or reorder a
    resume, and the finished directory is byte-identical regardless."""
    import repro.scenarios.runner as runner_module

    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "full")
    pristine = canonical_files(full.directory)
    run_scenarios(specs[:2], stream_to=tmp_path / "crash")
    _rewrite_costs(
        tmp_path / "crash" / INDEX_NAME,
        {specs[0].label: float("nan"), specs[1].label: float("inf")},
    )
    order = []
    real = runner_module.execute_spec
    monkeypatch.setattr(
        runner_module, "execute_spec", lambda spec: order.append(spec.name) or real(spec)
    )
    resumed = run_scenarios(specs, resume=tmp_path / "crash")
    # No usable cost survives the guard -> deterministic submission order.
    assert order == [specs[2].name, specs[3].name]
    assert resumed.executed == 2 and resumed.skipped == 2
    assert canonical_files(resumed.directory) == pristine


def test_legacy_index_without_cost_columns_still_resumes(tmp_path):
    """Directories from before the cost columns must resume untouched."""
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "dir")
    pristine = canonical_files(full.directory)
    index = tmp_path / "dir" / INDEX_NAME
    lines = []
    for line in index.read_text().splitlines():
        entry = json.loads(line)
        for key in (*COST_KEYS, "timesteps", "replicate"):
            entry.pop(key, None)
        lines.append(json.dumps(entry, sort_keys=True))
    index.write_text("\n".join(lines) + "\n")
    (tmp_path / "dir" / MANIFEST_NAME).unlink()
    full.paths[0].unlink()
    resumed = run_scenarios(specs, resume=tmp_path / "dir")
    assert resumed.executed == 1 and resumed.skipped == len(specs) - 1
    assert canonical_files(resumed.directory) == pristine


def test_zero_step_point_records_null_step_cost(tmp_path):
    """ISSUE 10 bugfix: a run whose first adversary batch is empty executes
    zero steps; its per-step cost is undefined (``None``), not a
    ZeroDivisionError or inf — end to end through index, manifest, report."""
    from repro.analysis.report import generate_report

    trace = tmp_path / "empty-trace.jsonl"
    trace.write_text("")
    spec = BASE.with_overrides(
        name="zero-steps",
        adversary="trace-replay",
        adversary_kwargs={"path": str(trace)},
    )
    result = run_scenarios([spec], stream_to=tmp_path / "dir")
    entry = json.loads(result.index_path.read_text())
    assert entry["timesteps"] == 0
    assert entry["wall_clock_s"] > 0
    assert entry["step_cost_s"] is None
    manifest = json.loads(result.manifest_path.read_text())
    assert manifest["entries"][0]["step_cost_s"] is None
    report = generate_report(tmp_path / "dir", include_timeline=False)
    assert "zero-steps" in report.markdown


def test_index_timesteps_column_records_executed_steps(tmp_path):
    """The cost denominator is steps *executed*, not steps requested: a run
    cut short by graph exhaustion must not understate its per-step cost."""
    result = run_scenarios(SWEEP.expand()[:1], stream_to=tmp_path / "dir")
    entry = json.loads(result.index_path.read_text())
    record_steps = json.loads(
        result.paths[0].read_text().splitlines()[1]
    )["data"]["steps"]
    assert entry["timesteps"] == record_steps
    assert entry["step_cost_s"] == pytest.approx(entry["wall_clock_s"] / record_steps)
