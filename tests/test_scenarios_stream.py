"""Streaming sweeps: durability, crash-resume differentials, byte-identity.

The contract under test (ISSUE 3 tentpole): a sweep interrupted after ``k``
of ``n`` points resumes with exactly ``n - k`` executions, and the final
artifact set — point JSONL files plus ``MANIFEST.json`` — is byte-identical
to an uninterrupted run, serial or parallel.  ``index.jsonl`` is the
append-only completion log and is deliberately excluded from the identity
(it records completion order, which crashes and worker counts change).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec, SweepSpec, run_scenarios
from repro.scenarios.artifacts import save_run
from repro.scenarios.runner import execute_spec
from repro.scenarios.stream import INDEX_NAME, MANIFEST_NAME, SweepStream
from repro.util.validation import ValidationError

BASE = ScenarioSpec(
    name="stream-test",
    healer="xheal",
    healer_kwargs={"kappa": 4},
    adversary="random",
    adversary_kwargs={"delete_probability": 0.6},
    topology="random-regular",
    topology_kwargs={"n": 16, "degree": 4},
    timesteps=5,
    metric_every=3,
    exact_expansion_limit=0,
    stretch_sample_pairs=20,
    seed=3,
)

SWEEP = SweepSpec(base=BASE, axes={"timesteps": [3, 5], "healer_kwargs.kappa": [2, 4]})


def canonical_files(directory: Path) -> dict[str, bytes]:
    """The byte-identity surface: everything except the completion log."""
    return {
        path.name: path.read_bytes()
        for path in Path(directory).iterdir()
        if path.name != INDEX_NAME
    }


def test_streamed_artifacts_match_buffered_save_run(tmp_path):
    specs = SWEEP.expand()
    result = run_scenarios(specs, stream_to=tmp_path / "stream")
    assert result.executed == len(specs) and result.skipped == 0
    assert [p.name for p in result.paths] == sorted(p.name for p in result.paths)
    for index, spec in enumerate(specs):
        buffered = save_run(execute_spec(spec), tmp_path / f"buffered-{index}.jsonl")
        assert buffered.read_bytes() == result.paths[index].read_bytes()


def test_parallel_stream_identical_to_serial(tmp_path):
    specs = SWEEP.expand()
    serial = run_scenarios(specs, workers=1, stream_to=tmp_path / "serial")
    parallel = run_scenarios(specs, workers=3, stream_to=tmp_path / "parallel")
    assert serial.total == parallel.total == len(specs)
    assert canonical_files(serial.directory) == canonical_files(parallel.directory)


@pytest.mark.parametrize("workers", [1, 2])
def test_resume_after_partial_run_executes_exactly_the_missing_points(tmp_path, workers):
    specs = SWEEP.expand()
    n, k = len(specs), 2
    full = run_scenarios(specs, workers=workers, stream_to=tmp_path / "full")

    # "Crash" after k points: stream only a prefix, then resume the full grid.
    run_scenarios(specs[:k], stream_to=tmp_path / "crash")
    resumed = run_scenarios(specs, workers=workers, resume=tmp_path / "crash")
    assert resumed.executed == n - k
    assert resumed.skipped == k
    assert canonical_files(full.directory) == canonical_files(resumed.directory)


def test_resume_counts_real_executions(tmp_path, monkeypatch):
    """The n-k guarantee counts actual execute_spec calls, not bookkeeping."""
    import repro.scenarios.runner as runner_module

    specs = SWEEP.expand()
    run_scenarios(specs[:3], stream_to=tmp_path / "dir")
    calls = []
    real = runner_module.execute_spec
    monkeypatch.setattr(
        runner_module, "execute_spec", lambda spec: calls.append(spec.name) or real(spec)
    )
    result = run_scenarios(specs, resume=tmp_path / "dir")
    assert calls == [spec.name for spec in specs[3:]]
    assert result.executed == len(specs) - 3


def test_resume_after_artifact_deletion_reruns_only_that_point(tmp_path):
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "full")
    victim = full.paths[1]
    reference = victim.read_bytes()
    victim.unlink()
    resumed = run_scenarios(specs, resume=tmp_path / "full")
    assert resumed.executed == 1 and resumed.skipped == len(specs) - 1
    assert victim.read_bytes() == reference


def test_resume_tolerates_torn_index_tail_and_tampered_artifact(tmp_path):
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "full")
    pristine = canonical_files(full.directory)

    # Simulate a crash mid-append: garbage half-line at the index tail.
    index = full.index_path
    index.write_bytes(index.read_bytes() + b'{"index": 99, "finger')
    # And a tampered artifact whose spec no longer matches its fingerprint.
    tampered = full.paths[0]
    lines = tampered.read_text().splitlines()
    spec_line = json.loads(lines[0])
    spec_line["data"]["seed"] = 999
    tampered.write_text("\n".join([json.dumps(spec_line, sort_keys=True)] + lines[1:]) + "\n")

    resumed = run_scenarios(specs, resume=tmp_path / "full")
    assert resumed.executed == 1 and resumed.skipped == len(specs) - 1
    assert canonical_files(resumed.directory) == pristine


def test_resume_detects_tampering_beyond_the_spec_line(tmp_path):
    """The index's whole-file hash catches a flipped digit anywhere."""
    specs = SWEEP.expand()
    full = run_scenarios(specs, stream_to=tmp_path / "full")
    pristine = canonical_files(full.directory)

    tampered = full.paths[2]
    lines = tampered.read_text().splitlines()
    summary_line = json.loads(lines[1])
    assert summary_line["kind"] == "summary"
    summary_line["data"]["edges"] += 1
    tampered.write_text("\n".join([lines[0], json.dumps(summary_line, sort_keys=True)] + lines[2:]) + "\n")

    resumed = run_scenarios(specs, resume=tmp_path / "full")
    assert resumed.executed == 1 and resumed.skipped == len(specs) - 1
    assert canonical_files(resumed.directory) == pristine


def test_resume_with_a_different_sweep_warns_about_orphan_points(tmp_path):
    """Resuming the wrong directory must be loud, not silently mixed."""
    specs = SWEEP.expand()
    run_scenarios(specs[:2], stream_to=tmp_path / "dir")
    other = [BASE.with_overrides(name="other-sweep", timesteps=4)]
    with pytest.warns(RuntimeWarning, match="not part of this sweep"):
        result = run_scenarios(other, resume=tmp_path / "dir")
    assert result.executed == 1
    # The manifest covers only the resumed grid; orphan artifacts survive.
    manifest = json.loads(result.manifest_path.read_text())
    assert manifest["points"] == 1
    assert len(list((tmp_path / "dir").glob("0*.jsonl"))) == 3


def test_stream_to_refuses_to_clobber_an_existing_stream(tmp_path):
    specs = SWEEP.expand()
    run_scenarios(specs[:1], stream_to=tmp_path / "dir")
    with pytest.raises(ValidationError, match="resume"):
        run_scenarios(specs, stream_to=tmp_path / "dir")


def test_streamed_sweep_rejects_duplicate_points(tmp_path):
    spec = BASE.with_overrides(timesteps=3)
    with pytest.raises(ValidationError, match="duplicate fingerprints"):
        run_scenarios([spec, spec], stream_to=tmp_path / "dir")
    # The buffered path still allows duplicates (no identity to collide on).
    records = run_scenarios([spec, spec])
    assert records[0] == records[1]


def test_finalize_refuses_incomplete_stream(tmp_path):
    specs = SWEEP.expand()
    stream = SweepStream(tmp_path / "dir")
    stream.record(0, execute_spec(specs[0]))
    stream.close()
    with pytest.raises(ValidationError, match="no recorded artifact"):
        stream.finalize(specs)
    assert not (tmp_path / "dir" / MANIFEST_NAME).exists()


def test_manifest_lists_points_in_submission_order(tmp_path):
    specs = SWEEP.expand()
    result = run_scenarios(specs, workers=2, stream_to=tmp_path / "dir")
    manifest = json.loads(result.manifest_path.read_text())
    assert manifest["points"] == len(specs)
    assert [entry["index"] for entry in manifest["entries"]] == list(range(len(specs)))
    assert [entry["fingerprint"] for entry in manifest["entries"]] == [
        spec.fingerprint() for spec in specs
    ]


def test_buffered_path_unchanged(tmp_path):
    """No stream args -> the PR-2 contract: list[RunRecord] in spec order."""
    specs = SWEEP.expand()[:2]
    records = run_scenarios(specs)
    assert [record.spec for record in records] == specs
