"""Entry-point plugin loading: third-party registry extension without imports."""

from __future__ import annotations

import pytest

import repro.scenarios.registry as registry_module
from repro.core.xheal import Xheal
from repro.scenarios.registry import ADVERSARIES, HEALERS, TOPOLOGIES


class FakeEntryPoint:
    """Stands in for importlib.metadata.EntryPoint (name + load())."""

    def __init__(self, name, target):
        self.name = name
        self._target = target

    def load(self):
        if isinstance(self._target, Exception):
            raise self._target
        return self._target


class PluginHealer:
    """A third-party healer class, never imported by any provider module."""

    def __init__(self, kappa: int = 4, seed: int = 0):
        self.kappa, self.seed = kappa, seed


@pytest.fixture
def entry_point_world(monkeypatch):
    """Install fake entry points and force one repopulation pass.

    Registration survives in the module-level registries, so the fixture
    removes whatever the test added afterwards.
    """
    added: list[tuple[registry_module.Registry, str]] = []

    def install(groups: dict) -> None:
        monkeypatch.setattr(
            registry_module,
            "_iter_entry_points",
            lambda group: tuple(groups.get(group, ())),
        )
        monkeypatch.setattr(registry_module, "_populated", False)
        for registry in (HEALERS, ADVERSARIES, TOPOLOGIES):
            before = set(registry._entries)
            registry.names()  # triggers _ensure_populated -> plugin loading
            added.extend((registry, name) for name in set(registry._entries) - before)

    yield install
    for registry, name in added:
        registry._entries.pop(name, None)
    registry_module._populated = True


def test_component_entry_points_register_under_their_name(entry_point_world):
    entry_point_world({"repro.healers": [FakeEntryPoint("plugin-healer", PluginHealer)]})
    assert "plugin-healer" in HEALERS.names()
    assert HEALERS.get("plugin-healer") is PluginHealer


def test_plugin_group_entries_are_load_only(entry_point_world):
    loaded = []
    entry_point_world(
        {"repro.plugins": [FakeEntryPoint("side-effects", lambda: loaded.append("x"))]}
    )
    # Load-only groups never touch the registries; the object was loaded
    # (imported), which is where a real plugin's @register_* decorators run.
    assert "side-effects" not in HEALERS.names()


def test_redeclaring_a_builtin_is_a_noop(entry_point_world):
    entry_point_world({"repro.healers": [FakeEntryPoint("xheal", Xheal)]})
    assert HEALERS.get("xheal") is Xheal


def test_conflicting_and_broken_entry_points_warn_but_do_not_break(entry_point_world):
    broken = FakeEntryPoint("exploder", RuntimeError("boom"))
    conflicting = FakeEntryPoint("xheal", PluginHealer)  # name taken by a different class
    good = FakeEntryPoint("still-works", PluginHealer)
    with pytest.warns(RuntimeWarning) as warned:
        entry_point_world({"repro.healers": [broken, conflicting, good]})
    messages = [str(w.message) for w in warned]
    assert any("exploder" in message for message in messages)
    assert any("xheal" in message for message in messages)
    # The registry survives: built-in intact, good plugin registered.
    assert HEALERS.get("xheal") is Xheal
    assert HEALERS.get("still-works") is PluginHealer


def test_spec_compiles_a_plugin_healer_by_name(entry_point_world):
    from repro.scenarios import ScenarioSpec

    entry_point_world({"repro.healers": [FakeEntryPoint("plugin-healer", PluginHealer)]})
    spec = ScenarioSpec(
        healer="plugin-healer",
        topology="random-regular",
        topology_kwargs={"n": 8, "degree": 3},
        timesteps=1,
    )
    config = spec.compile()
    healer = config.healer_factory()
    assert isinstance(healer, PluginHealer)
    # The run-parameter kappa and a derived seed were injected, as for any
    # kappa/seed-aware registered healer.
    assert healer.kappa == spec.kappa
    assert healer.seed != spec.seed
