"""Failure-domain layer: node metadata, datacenter topologies, round-trips.

ISSUE 9 tentpole part 1: domain labels are plain node metadata that must
survive every representation the pipeline moves a graph through — the
``nx.Graph`` a topology generator emits, the healer's ``EdgeStore``, the
materialized snapshot, and a spec JSON round-trip (the generator is
deterministic, so rebuilding from the spec reproduces the labels).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.domains import (
    DOMAIN_KEY,
    assign_domain,
    domain_members,
    list_domains,
    node_domain,
)
from repro.core.edgestore import EdgeStore
from repro.scenarios.registry import HEALERS, TOPOLOGIES
from repro.scenarios.spec import ScenarioSpec
from repro.util.validation import ValidationError


# -- domain helpers -----------------------------------------------------------


def test_node_domain_reads_nx_graphs_and_edgestores_identically():
    graph = nx.path_graph(3)
    assign_domain(graph, [0, 1], "rack00")
    store = EdgeStore()
    for node in graph.nodes():
        store.add_node(node)
        if graph.nodes[node]:
            store.set_node_data(node, graph.nodes[node])
    assert node_domain(graph, 0) == node_domain(store, 0) == "rack00"
    assert node_domain(graph, 2) is None and node_domain(store, 2) is None
    assert domain_members(graph) == domain_members(store) == {"rack00": [0, 1]}
    assert list_domains(store) == ["rack00"]


def test_domain_members_sorts_domains_and_their_members():
    graph = nx.empty_graph(6)
    assign_domain(graph, [5, 3], "b")
    assign_domain(graph, [4, 0], "a")
    assert domain_members(graph) == {"a": [0, 4], "b": [3, 5]}


# -- EdgeStore node metadata --------------------------------------------------


def test_edgestore_node_data_round_trips_through_to_networkx():
    store = EdgeStore()
    store.add_node(1)
    store.add_node(2)
    store.add_edge(1, 2)
    store.set_node_data(1, {DOMAIN_KEY: "pod00", "weight": 3})
    snapshot = store.to_networkx()
    assert snapshot.nodes[1] == {DOMAIN_KEY: "pod00", "weight": 3}
    assert snapshot.nodes[2] == {}
    # The snapshot owns its attrs: mutating it must not touch the store.
    snapshot.nodes[1]["weight"] = 99
    assert store.node_data(1)["weight"] == 3


def test_edgestore_removing_a_node_drops_its_metadata():
    store = EdgeStore()
    store.add_node(1)
    store.set_node_data(1, {DOMAIN_KEY: "rack00"})
    store.remove_node(1)
    store.add_node(1)
    assert store.node_data(1) == {}


def test_edgestore_node_data_raises_for_unknown_nodes():
    store = EdgeStore()
    with pytest.raises(KeyError):
        store.node_data(7)
    with pytest.raises(KeyError):
        store.set_node_data(7, {"domain": "x"})


def test_edgestore_empty_data_clears_the_annotation():
    store = EdgeStore()
    store.add_node(1)
    store.set_node_data(1, {"domain": "rack00"})
    store.set_node_data(1, {})
    assert store.node_data(1) == {}


def test_healer_initialize_copies_node_attributes_into_the_store():
    graph = TOPOLOGIES.get("racked-clos")(racks=3, nodes_per_rack=4)
    healer = HEALERS.get("xheal")(seed=0)
    healer.initialize(graph)
    assert domain_members(healer.graph_store) == domain_members(graph)
    # ... and back out through the lazy materializer.
    assert domain_members(healer.graph) == domain_members(graph)
    # A second healer fed the materialized snapshot sees the same labels:
    # the EdgeStore round-trip is lossless.
    second = HEALERS.get("no-heal")(seed=0)
    second.initialize(healer.graph)
    assert domain_members(second.graph_store) == domain_members(graph)


# -- datacenter topologies ----------------------------------------------------


def test_racked_clos_is_connected_deterministic_and_fully_labelled():
    first = TOPOLOGIES.get("racked-clos")(racks=4, nodes_per_rack=6, spine_degree=2)
    second = TOPOLOGIES.get("racked-clos")(racks=4, nodes_per_rack=6, spine_degree=2)
    assert nx.is_connected(first)
    assert nx.utils.graphs_equal(first, second)
    members = domain_members(first)
    assert sorted(members) == ["rack00", "rack01", "rack02", "rack03"]
    assert all(len(nodes) == 6 for nodes in members.values())
    assert sum(len(nodes) for nodes in members.values()) == first.number_of_nodes()


def test_racked_clos_stays_connected_after_losing_any_whole_rack():
    graph = TOPOLOGIES.get("racked-clos")(racks=4, nodes_per_rack=6, spine_degree=2)
    for rack, nodes in domain_members(graph).items():
        survivor = graph.copy()
        survivor.remove_nodes_from(nodes)
        assert nx.is_connected(survivor), f"losing {rack} disconnected the fabric"


def test_pod_mesh_builds_clique_pods_with_the_requested_bridges():
    graph = TOPOLOGIES.get("pod-mesh")(pods=3, nodes_per_pod=4, inter_pod_links=2)
    assert nx.is_connected(graph)
    members = domain_members(graph)
    assert sorted(members) == ["pod00", "pod01", "pod02"]
    for nodes in members.values():
        pod = graph.subgraph(nodes)
        assert pod.number_of_edges() == 4 * 3 // 2  # clique
    inter = [
        (u, v)
        for u, v in graph.edges()
        if node_domain(graph, u) != node_domain(graph, v)
    ]
    assert len(inter) == 3 * 2  # pods choose 2 pairs x inter_pod_links


def test_datacenter_topologies_validate_their_parameters():
    with pytest.raises(ValidationError):
        TOPOLOGIES.get("racked-clos")(racks=1)
    with pytest.raises(ValidationError):
        TOPOLOGIES.get("racked-clos")(racks=4, spine_degree=4)
    with pytest.raises(ValidationError):
        TOPOLOGIES.get("pod-mesh")(pods=2, nodes_per_pod=4, inter_pod_links=5)


def test_domain_labels_survive_a_spec_json_round_trip():
    spec = ScenarioSpec(
        healer="no-heal",
        adversary="insertion-only",
        topology="pod-mesh",
        topology_kwargs={"pods": 3, "nodes_per_pod": 4},
        timesteps=1,
        seed=0,
    )
    rebuilt = ScenarioSpec.from_json(spec.to_json())
    assert rebuilt == spec
    assert domain_members(rebuilt.build_initial_graph()) == domain_members(
        spec.build_initial_graph()
    )
