"""Tests for repro.core.clouds (CloudRegistry and Cloud)."""

import pytest

from repro.core.clouds import CloudKind, CloudRegistry
from repro.util.validation import ValidationError


@pytest.fixture
def registry():
    return CloudRegistry()


def test_new_primary_cloud_registers_members(registry):
    cloud = registry.new_primary_cloud([1, 2, 3])
    assert cloud.is_primary
    assert cloud.size() == 3
    assert registry.primary_clouds_of(2) == [cloud.cloud_id]
    registry.check_invariants()


def test_cloud_colors_are_unique(registry):
    first = registry.new_primary_cloud([1, 2])
    second = registry.new_primary_cloud([3, 4])
    assert first.color != second.color


def test_secondary_cloud_marks_bridges_non_free(registry):
    c1 = registry.new_primary_cloud([1, 2, 3])
    c2 = registry.new_primary_cloud([4, 5, 6])
    secondary = registry.new_secondary_cloud({c1.cloud_id: 1, c2.cloud_id: 4})
    assert secondary.is_secondary
    assert not registry.is_free(1)
    assert not registry.is_free(4)
    assert registry.is_free(2)
    assert registry.secondary_cloud_of(1) == secondary.cloud_id
    registry.check_invariants()


def test_secondary_requires_free_bridges(registry):
    c1 = registry.new_primary_cloud([1, 2])
    c2 = registry.new_primary_cloud([3, 4])
    registry.new_secondary_cloud({c1.cloud_id: 1, c2.cloud_id: 3})
    c3 = registry.new_primary_cloud([5, 6])
    with pytest.raises(ValidationError):
        registry.new_secondary_cloud({c1.cloud_id: 1, c3.cloud_id: 5})


def test_secondary_requires_primary_clouds(registry):
    c1 = registry.new_primary_cloud([1, 2])
    with pytest.raises(ValidationError):
        registry.new_secondary_cloud({999: 1})
    secondary = registry.new_secondary_cloud({c1.cloud_id: 1})
    with pytest.raises(ValidationError):
        registry.new_secondary_cloud({secondary.cloud_id: 2})


def test_free_members_sorted(registry):
    cloud = registry.new_primary_cloud([5, 3, 9])
    assert registry.free_members(cloud.cloud_id) == [3, 5, 9]


def test_remove_member_updates_indices(registry):
    cloud = registry.new_primary_cloud([1, 2, 3])
    registry.remove_member(cloud.cloud_id, 2)
    assert 2 not in cloud.members
    assert registry.primary_clouds_of(2) == []
    registry.check_invariants()


def test_remove_bridge_clears_bridge_of(registry):
    c1 = registry.new_primary_cloud([1, 2])
    c2 = registry.new_primary_cloud([3, 4])
    secondary = registry.new_secondary_cloud({c1.cloud_id: 1, c2.cloud_id: 3})
    registry.remove_member(secondary.cloud_id, 1)
    assert c1.cloud_id not in secondary.bridge_of
    assert registry.is_free(1)
    registry.check_invariants()


def test_remove_node_everywhere(registry):
    c1 = registry.new_primary_cloud([1, 2, 3])
    c2 = registry.new_primary_cloud([1, 4, 5])
    primary_ids, secondary_id = registry.remove_node_everywhere(1)
    assert set(primary_ids) == {c1.cloud_id, c2.cloud_id}
    assert secondary_id is None
    assert registry.primary_clouds_of(1) == []
    registry.check_invariants()


def test_dissolve_secondary_frees_members(registry):
    c1 = registry.new_primary_cloud([1, 2])
    c2 = registry.new_primary_cloud([3, 4])
    secondary = registry.new_secondary_cloud({c1.cloud_id: 1, c2.cloud_id: 3})
    registry.dissolve(secondary.cloud_id)
    assert registry.is_free(1)
    assert registry.is_free(3)
    assert secondary.cloud_id not in registry
    registry.check_invariants()


def test_dissolve_primary_removes_membership(registry):
    cloud = registry.new_primary_cloud([1, 2, 3])
    registry.dissolve(cloud.cloud_id)
    assert registry.primary_clouds_of(1) == []
    assert len(registry) == 0


def test_add_member_sharing(registry):
    c1 = registry.new_primary_cloud([1, 2])
    c2 = registry.new_primary_cloud([3, 4])
    registry.add_member(c1.cloud_id, 3)
    assert set(registry.primary_clouds_of(3)) == {c1.cloud_id, c2.cloud_id}
    registry.check_invariants()


def test_set_bridge_registers_association(registry):
    c1 = registry.new_primary_cloud([1, 2])
    c2 = registry.new_primary_cloud([3, 4])
    secondary = registry.new_secondary_cloud({c1.cloud_id: 1})
    registry.set_bridge(secondary.cloud_id, c2.cloud_id, 3)
    assert secondary.bridge_of[c2.cloud_id] == 3
    assert not registry.is_free(3)
    registry.check_invariants()


def test_redirect_bridges_after_merge(registry):
    c1 = registry.new_primary_cloud([1, 2])
    c2 = registry.new_primary_cloud([3, 4])
    c3 = registry.new_primary_cloud([5, 6])
    secondary = registry.new_secondary_cloud({c1.cloud_id: 1, c3.cloud_id: 5})
    merged = registry.new_primary_cloud([1, 2, 3, 4])
    registry.redirect_bridges([c1.cloud_id, c2.cloud_id], merged.cloud_id)
    assert merged.cloud_id in secondary.bridge_of
    assert c1.cloud_id not in secondary.bridge_of
    assert secondary.bridge_of[c3.cloud_id] == 5


def test_clouds_filter_by_kind(registry):
    registry.new_primary_cloud([1, 2])
    c2 = registry.new_primary_cloud([3, 4])
    registry.new_secondary_cloud({c2.cloud_id: 3})
    assert len(registry.clouds(CloudKind.PRIMARY)) == 2
    assert len(registry.clouds(CloudKind.SECONDARY)) == 1
    assert len(registry.clouds()) == 3


def test_get_unknown_cloud_raises(registry):
    with pytest.raises(ValidationError):
        registry.get(12345)
