"""Perf smoke test: a representative snapshot-heavy run must stay fast.

Gross performance regressions in the metrics pipeline (accidentally dropping
back to all-pairs stretch, dense O(n^3) spectra on large graphs, per-subset
Python cut scans, cache misses on unchanged graphs) blow straight through the
generous wall-clock budget asserted here, so they fail tier-1 instead of
silently rotting.  The budget is deliberately loose (~10x the measured cost on
a warm developer machine) to stay robust on slow CI hardware.
"""

from __future__ import annotations

import time

import networkx as nx
import pytest

from repro.adversary import RandomAdversary
from repro.core.xheal import Xheal
from repro.harness.experiment import ExperimentConfig, run_experiment

#: Measured ~6s on the reference container; anything past this is a gross regression.
WALL_CLOCK_BUDGET_SECONDS = 90.0


@pytest.mark.slow
def test_256_node_200_step_snapshot_loop_within_budget():
    config = ExperimentConfig(
        healer_factory=lambda: Xheal(kappa=4, seed=1),
        adversary_factory=lambda: RandomAdversary(seed=2, delete_probability=0.55),
        initial_graph=nx.random_regular_graph(8, 256, seed=3),
        timesteps=200,
        metric_every=25,
        check_invariants_every=25,
        exact_expansion_limit=16,
        stretch_sample_pairs=100,
        seed=0,
    )
    start = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - start
    assert result.timesteps_executed == 200
    assert result.timeline.entries, "intermediate snapshots should have been recorded"
    assert result.cache_stats["hits"] > 0, "the metrics cache should be doing work"
    assert elapsed < WALL_CLOCK_BUDGET_SECONDS, (
        f"200-step/256-node snapshot loop took {elapsed:.1f}s "
        f"(budget {WALL_CLOCK_BUDGET_SECONDS:.0f}s) — metrics pipeline regression"
    )


#: Measured ~0.15s on the reference container with the data-oriented core;
#: the budget is ~60x that, so only a wholesale fallback to per-event
#: materialization / Python degree scans can blow it.
CORE_BUDGET_SECONDS = 10.0


@pytest.mark.slow
def test_bare_simulation_core_within_budget():
    """The snapshot-free hot loop: pure EdgeStore + incremental tracking."""
    config = ExperimentConfig(
        healer_factory=lambda: Xheal(kappa=4, seed=1),
        adversary_factory=lambda: RandomAdversary(seed=2, delete_probability=0.55),
        initial_graph=nx.random_regular_graph(8, 256, seed=3),
        timesteps=200,
        exact_expansion_limit=16,
        stretch_sample_pairs=100,
        snapshot_every=0,
        seed=0,
    )
    start = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - start
    assert result.timesteps_executed == 200
    assert result.final_metrics is None  # snapshots really were skipped
    assert result.worst_degree_ratio > 0
    assert elapsed < CORE_BUDGET_SECONDS, (
        f"bare 200-step/256-node core loop took {elapsed:.1f}s "
        f"(budget {CORE_BUDGET_SECONDS:.0f}s) — simulation core regression"
    )
