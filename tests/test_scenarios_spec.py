"""Tests for the declarative scenario API: registries, specs, sweeps."""

from __future__ import annotations

import json

import networkx as nx
import pytest

from repro.harness.experiment import ExperimentConfig
from repro.harness.workloads import WORKLOADS
from repro.scenarios import (
    ADVERSARIES,
    HEALERS,
    TOPOLOGIES,
    ScenarioSpec,
    SweepSpec,
    UnknownNameError,
    list_adversaries,
    list_healers,
    list_topologies,
)
from repro.util.validation import ValidationError

#: Small-but-valid kwargs per topology (several generators have required args).
TOPOLOGY_KWARGS = {
    "star": {"n": 12},
    "random-regular": {"n": 12, "degree": 4},
    "erdos-renyi": {"n": 12},
    "grid": {"rows": 4},
    "ring": {"n": 12},
    "power-law": {"n": 12, "m": 2},
    "two-cliques": {"n": 12},
    "racked-clos": {"racks": 3, "nodes_per_rack": 4},
    "pod-mesh": {"pods": 3, "nodes_per_pod": 4},
}


def test_registries_are_populated():
    assert "xheal" in list_healers()
    assert {"forgiving-tree", "forgiving-graph", "line-heal", "no-heal"} <= set(list_healers())
    assert {"random", "max-degree", "cascade", "deletion-only"} <= set(list_adversaries())
    assert set(list_topologies()) == set(TOPOLOGY_KWARGS)


def test_workloads_is_a_live_view_of_the_topology_registry():
    # Single source of truth: the harness mapping IS the registry table.
    assert dict(WORKLOADS) == {name: TOPOLOGIES.get(name) for name in list_topologies()}
    with pytest.raises(TypeError):
        WORKLOADS["injected"] = lambda: None  # read-only


def test_unknown_names_raise_with_suggestions():
    with pytest.raises(UnknownNameError, match="did you mean 'xheal'"):
        ScenarioSpec(healer="xhea", topology="ring").validate()
    with pytest.raises(UnknownNameError, match="registered adversary names"):
        ScenarioSpec(healer="xheal", adversary="nope", topology="ring").validate()
    with pytest.raises(UnknownNameError, match="did you mean 'ring'"):
        ScenarioSpec(healer="xheal", topology="rng").validate()


def test_aliases_resolve():
    assert ADVERSARIES.get("hub-attack") is ADVERSARIES.get("max-degree")
    assert HEALERS.get("cycle-heal") is HEALERS.get("line-heal")


def test_bad_kwargs_name_the_accepted_parameters():
    spec = ScenarioSpec(healer="xheal", topology="ring", healer_kwargs={"kapa": 3})
    with pytest.raises(ValidationError, match="accepted parameters.*kappa"):
        spec.validate()
    spec = ScenarioSpec(healer="xheal", topology="ring", topology_kwargs={"nodes": 9})
    with pytest.raises(ValidationError, match="accepted parameters"):
        spec.validate()


def test_run_kappa_reaches_kappa_aware_healers():
    # healer_kwargs omit kappa: the run-parameter kappa drives the healer, so
    # a top-level "kappa" sweep axis actually changes the algorithm that runs.
    spec = ScenarioSpec(healer="xheal", topology="ring", topology_kwargs={"n": 10}, kappa=8)
    assert spec.component_kwargs("healer")["kappa"] == 8
    assert spec.compile().healer_factory().kappa == 8
    # Baselines without a kappa parameter are untouched.
    baseline = spec.with_overrides(healer="forgiving-tree")
    assert "kappa" not in baseline.component_kwargs("healer")
    baseline.compile()


def test_mismatched_kappa_is_rejected():
    spec = ScenarioSpec(healer="xheal", topology="ring", topology_kwargs={"n": 10},
                        healer_kwargs={"kappa": 8}, kappa=4)
    with pytest.raises(ValidationError, match="disagrees with the run parameter"):
        spec.validate()
    assert spec.with_overrides(kappa=8).validate()


def test_non_json_kwargs_are_rejected():
    spec = ScenarioSpec(healer="xheal", topology="ring", topology_kwargs={"n": (1, 2)})
    with pytest.raises(ValidationError, match="round-trip"):
        spec.validate()


def test_every_registered_combination_round_trips_and_compiles(tmp_path):
    """Property-style sweep: all healer x adversary x topology combos survive
    ScenarioSpec -> JSON -> ScenarioSpec -> ExperimentConfig."""
    from repro.adversary.base import AdversaryEvent, EventType
    from repro.adversary.traces import write_churn_trace

    trace = write_churn_trace(
        [AdversaryEvent(EventType.INSERT, 999, (0,))], tmp_path / "churn.jsonl"
    )
    # Adversaries with required constructor arguments beyond a seed.
    adversary_kwargs = {"trace-replay": {"path": str(trace)}}
    for healer in list_healers():
        for adversary in list_adversaries():
            for topology in list_topologies():
                spec = ScenarioSpec(
                    healer=healer,
                    adversary=adversary,
                    adversary_kwargs=adversary_kwargs.get(adversary, {}),
                    topology=topology,
                    topology_kwargs=TOPOLOGY_KWARGS[topology],
                    timesteps=5,
                    seed=1,
                )
                round_tripped = ScenarioSpec.from_json(spec.to_json())
                assert round_tripped == spec
                # Canonical JSON is byte-stable through a round trip.
                assert round_tripped.to_json() == spec.to_json()
                config = round_tripped.compile()
                assert isinstance(config, ExperimentConfig)
                assert isinstance(config.initial_graph, nx.Graph)
                assert config.initial_graph.number_of_nodes() >= 2
                healer_obj = config.healer_factory()
                adversary_obj = config.adversary_factory()
                assert HEALERS.get(healer) is type(healer_obj)
                assert ADVERSARIES.get(adversary) is type(adversary_obj)


def test_seed_derivation_is_deterministic_and_per_role():
    spec = ScenarioSpec(healer="xheal", topology="random-regular",
                        topology_kwargs={"n": 12, "degree": 4}, seed=9)
    healer_kwargs = spec.component_kwargs("healer")
    adversary_kwargs = spec.component_kwargs("adversary")
    topology_kwargs = spec.component_kwargs("topology")
    # Derived, reproducible, and independent between roles.
    assert healer_kwargs["seed"] != adversary_kwargs["seed"]
    assert spec.component_kwargs("healer") == healer_kwargs
    assert topology_kwargs["seed"] != healer_kwargs["seed"]
    # Explicit seeds win over derivation.
    pinned = spec.with_overrides(healer_kwargs={"seed": 123})
    assert pinned.component_kwargs("healer")["seed"] == 123


def test_compile_produces_runnable_config():
    spec = ScenarioSpec(
        healer="xheal",
        healer_kwargs={"kappa": 4},
        adversary="deletion-only",
        topology="random-regular",
        topology_kwargs={"n": 16, "degree": 4},
        timesteps=4,
        seed=3,
    )
    from repro.harness.experiment import run_experiment

    result = run_experiment(spec.compile())
    assert result.timesteps_executed == 4
    assert result.healer_name == "xheal"
    assert result.adversary_name == "deletion-only"


def test_sweep_expands_cross_product_in_canonical_order():
    base = ScenarioSpec(healer="xheal", topology="ring", topology_kwargs={"n": 10},
                        timesteps=5, seed=4)
    sweep = SweepSpec(base=base, axes={"timesteps": [5, 10], "healer_kwargs.kappa": [2, 4]})
    specs = sweep.expand()
    assert len(specs) == 4
    # Sorted axis order: "healer_kwargs.kappa" < "timesteps", so timesteps
    # varies fastest.
    assert [s.healer_kwargs.get("kappa") for s in specs] == [2, 2, 4, 4]
    assert [s.timesteps for s in specs] == [5, 10, 5, 10]
    # Sweeping the healer's kappa moves the run-parameter kappa with it, so
    # the Theorem-2 bounds always describe the healer that actually ran.
    assert [s.kappa for s in specs] == [2, 2, 4, 4]
    assert all(s.validate() for s in specs)
    # By default every point inherits the base seed: only the axes vary.
    assert {s.seed for s in specs} == {base.seed}
    assert specs[0].name.endswith("[healer_kwargs.kappa=2,timesteps=5]")
    # derive_seeds=True gives deterministic but per-point independent seeds.
    replicated = SweepSpec(base=base, axes=dict(sweep.axes), derive_seeds=True).expand()
    assert len({s.seed for s in replicated}) == 4
    assert [s.seed for s in replicated] == [
        s.seed for s in SweepSpec(base=base, axes=dict(sweep.axes), derive_seeds=True).expand()
    ]


def test_sweep_round_trips_through_json():
    base = ScenarioSpec(healer="xheal", topology="ring", topology_kwargs={"n": 10})
    sweep = SweepSpec(base=base, axes={"timesteps": [5, 10]}, name="demo")
    parsed = SweepSpec.from_json(sweep.to_json())
    assert parsed == sweep
    assert [s.to_json() for s in parsed.expand()] == [s.to_json() for s in sweep.expand()]


def test_sweep_rejects_bad_axes():
    base = ScenarioSpec(healer="xheal", topology="ring", topology_kwargs={"n": 10})
    with pytest.raises(ValidationError, match="sweepable"):
        SweepSpec(base=base, axes={"healer_name": ["xheal"]}).validate()
    with pytest.raises(ValidationError, match="dotted"):
        SweepSpec(base=base, axes={"bogus_kwargs.x": [1]}).validate()
    with pytest.raises(ValidationError, match="non-empty"):
        SweepSpec(base=base, axes={"timesteps": []}).validate()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValidationError, match="unknown ScenarioSpec fields"):
        ScenarioSpec.from_dict({"healer": "xheal", "topology": "ring", "healerr_kwargs": {}})
    data = json.loads(ScenarioSpec(healer="xheal", topology="ring").to_json())
    assert ScenarioSpec.from_dict(data) == ScenarioSpec(healer="xheal", topology="ring")
