"""Property-based tests (hypothesis) for the streaming/replicates layer.

ISSUE 5 satellite: for random specs and sweeps,

* a compressed artifact's bytes decompress to exactly the uncompressed
  artifact's bytes (compression is an encoding, never a different document),
* replicate expansion produces pairwise-distinct fingerprints that are
  stable under axis (re)ordering, and
* the index's cost columns survive a JSON round-trip exactly (what resume
  reads back is what the writer measured).
"""

from __future__ import annotations

import gzip
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioSpec, SweepSpec
from repro.scenarios.artifacts import (
    GZIP_MAGIC,
    iter_artifact,
    run_bytes,
    save_run,
)
from repro.scenarios.runner import RunRecord

FAST = settings(max_examples=40, deadline=None)

BASE = ScenarioSpec(
    name="prop-stream",
    healer="xheal",
    adversary="random",
    topology="random-regular",
    topology_kwargs={"n": 12, "degree": 4},
    timesteps=5,
    seed=1,
)

# JSON-native scalars that round-trip json.dumps/loads exactly.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8),
)
_row = st.dictionaries(st.text(min_size=1, max_size=8), _scalars, max_size=4)


@st.composite
def run_records(draw) -> RunRecord:
    """Random (not necessarily executable) records — serialization is what's
    under test, and it must be exact regardless of content."""
    spec = BASE.with_overrides(
        name=draw(st.none() | st.text(max_size=12)),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        timesteps=draw(st.integers(min_value=1, max_value=100)),
    )
    return RunRecord(
        spec=spec,
        summary=draw(_row),
        timeline=draw(st.lists(_row, max_size=3)),
        trace=draw(st.lists(_row, max_size=3)),
        cache_stats=draw(_row),
    )


@st.composite
def replicate_sweeps(draw) -> SweepSpec:
    """Valid sweeps over the real registries with replicates >= 2."""
    axes = draw(
        st.dictionaries(
            st.sampled_from(["timesteps", "metric_every", "healer_kwargs.kappa"]),
            st.lists(
                st.integers(min_value=1, max_value=50), min_size=1, max_size=3, unique=True
            ),
            max_size=2,
        )
    )
    return SweepSpec(
        base=BASE,
        axes=axes,
        name=draw(st.none() | st.text(max_size=10)),
        replicates=draw(st.integers(min_value=2, max_value=4)),
    )


@FAST
@given(run_records())
def test_compressed_artifact_decompresses_to_the_uncompressed_bytes(record):
    plain = run_bytes(record, compress=False)
    packed = run_bytes(record, compress=True)
    assert packed[:2] == GZIP_MAGIC
    assert gzip.decompress(packed) == plain
    # Deterministic: the same record always compresses to the same bytes.
    assert run_bytes(record, compress=True) == packed


@FAST
@given(record=run_records())
def test_gz_and_plain_artifacts_read_back_identically(tmp_path_factory, record):
    tmp = tmp_path_factory.mktemp("artifacts")
    plain = save_run(record, tmp / "run.jsonl")
    packed = save_run(record, tmp / "run.jsonl.gz")
    assert gzip.decompress(packed.read_bytes()) == plain.read_bytes()
    assert list(iter_artifact(packed)) == list(iter_artifact(plain))


@FAST
@given(replicate_sweeps(), st.integers(min_value=0, max_value=10**6))
def test_replicate_fingerprints_distinct_and_stable_under_axis_reordering(
    sweep, shuffle_seed
):
    import random

    fingerprints = [spec.fingerprint() for spec in sweep.expand()]
    assert len(set(fingerprints)) == len(fingerprints), "replicates must not collide"

    keys = list(sweep.axes)
    random.Random(shuffle_seed).shuffle(keys)
    permuted = SweepSpec(
        base=sweep.base,
        axes={key: sweep.axes[key] for key in keys},
        name=sweep.name,
        replicates=sweep.replicates,
    )
    assert [spec.fingerprint() for spec in permuted.expand()] == fingerprints
    # And stable full stop: expansion is a pure function of the document.
    assert [spec.fingerprint() for spec in sweep.expand()] == fingerprints


@FAST
@given(replicate_sweeps())
def test_replicate_ids_and_names_are_canonical(sweep):
    from repro.scenarios.sweep import split_replicate

    specs = sweep.expand()
    assert len(specs) % sweep.replicates == 0
    for position, spec in enumerate(specs):
        base_label, rep = split_replicate(spec.name)
        assert rep == position % sweep.replicates  # replicate id varies fastest
        assert spec.name == f"{base_label}[rep={rep}]"
    # Replicates of one base point differ only in name and seed.
    first, second = specs[0].to_dict(), specs[1].to_dict()
    differing = {key for key in first if first[key] != second[key]}
    assert differing == {"name", "seed"}


@FAST
@given(
    st.floats(min_value=0, allow_nan=False, allow_infinity=False),
    st.integers(min_value=1, max_value=10**6),
    st.integers(min_value=0, max_value=10**6),
)
def test_index_cost_columns_round_trip_json_exactly(wall_clock, timesteps, index):
    entry = {
        "index": index,
        "timesteps": timesteps,
        "wall_clock_s": wall_clock,
        "step_cost_s": wall_clock / timesteps,
        "replicate": None,
    }
    rebuilt = json.loads(json.dumps(entry, sort_keys=True))
    assert rebuilt == entry
    assert type(rebuilt["wall_clock_s"]) is type(entry["wall_clock_s"])
    # A second round-trip is a fixed point (no drift over resume cycles).
    assert json.loads(json.dumps(rebuilt, sort_keys=True)) == rebuilt
