"""Tests for repro.spectral.mixing and repro.spectral.metrics."""

import networkx as nx
import numpy as np
import pytest

from repro.harness.workloads import two_cliques_workload
from repro.spectral.metrics import compare_metrics, snapshot_metrics
from repro.spectral.mixing import (
    lazy_walk_matrix,
    mixing_time_bound_from_lambda,
    spectral_mixing_time,
)
from repro.util.validation import ValidationError


def test_lazy_walk_matrix_is_stochastic():
    graph = nx.random_regular_graph(4, 12, seed=1)
    walk = lazy_walk_matrix(graph)
    assert np.allclose(walk.sum(axis=1), 1.0)
    assert np.all(walk >= 0)


def test_lazy_walk_handles_isolated_node():
    graph = nx.Graph()
    graph.add_nodes_from([0, 1])
    graph.add_edge(0, 1)
    graph.add_node(2)
    walk = lazy_walk_matrix(graph)
    assert walk[2, 2] == pytest.approx(1.0)


def test_expander_mixes_faster_than_clique_pair():
    expander = nx.random_regular_graph(6, 16, seed=2)
    cliques = two_cliques_workload(16)
    assert spectral_mixing_time(expander) < spectral_mixing_time(cliques)


def test_disconnected_graph_never_mixes():
    graph = nx.Graph([(0, 1), (2, 3)])
    assert spectral_mixing_time(graph) == float("inf")


def test_mixing_epsilon_validation():
    graph = nx.cycle_graph(6)
    with pytest.raises(ValidationError):
        spectral_mixing_time(graph, epsilon=0)


def test_mixing_bound_from_lambda_monotone():
    slow = mixing_time_bound_from_lambda(0.01, 100)
    fast = mixing_time_bound_from_lambda(0.5, 100)
    assert fast < slow
    assert mixing_time_bound_from_lambda(0.0, 100) == float("inf")


def test_snapshot_metrics_fields():
    graph = nx.random_regular_graph(4, 14, seed=3)
    metrics = snapshot_metrics(graph)
    assert metrics.nodes == 14
    assert metrics.connected is True
    assert metrics.max_degree == 4
    assert metrics.edge_expansion > 0
    assert metrics.algebraic_connectivity > 0
    assert metrics.max_stretch is None


def test_snapshot_metrics_with_ghost_includes_stretch():
    graph = nx.random_regular_graph(4, 14, seed=3)
    metrics = snapshot_metrics(graph, ghost=graph)
    assert metrics.max_stretch == pytest.approx(1.0)


def test_snapshot_metrics_tiny_graph():
    graph = nx.Graph()
    graph.add_node(0)
    metrics = snapshot_metrics(graph)
    assert metrics.nodes == 1
    assert metrics.edge_expansion == 0.0


def test_compare_metrics_ratios():
    graph = nx.random_regular_graph(4, 14, seed=3)
    healed = snapshot_metrics(graph)
    ghost = snapshot_metrics(graph)
    ratios = compare_metrics(healed, ghost)
    assert ratios["degree_ratio"] == pytest.approx(1.0)
    assert ratios["expansion_ratio"] == pytest.approx(1.0)
    assert ratios["lambda_ratio"] == pytest.approx(1.0)


def test_compare_metrics_zero_denominator():
    graph = nx.random_regular_graph(4, 14, seed=3)
    healed = snapshot_metrics(graph)
    empty = snapshot_metrics(nx.Graph([(0, 1)]))
    ratios = compare_metrics(healed, snapshot_metrics(nx.path_graph(2)))
    assert ratios["degree_ratio"] > 0
    disconnected = nx.Graph([(0, 1), (2, 3)])
    ratios = compare_metrics(healed, snapshot_metrics(disconnected))
    assert ratios["expansion_ratio"] == float("inf")
    assert empty.nodes == 2
