"""End-to-end invariant tests for Xheal: the Theorem 2 guarantees under adversaries."""

import networkx as nx
import pytest

from repro.adversary import (
    CascadeAdversary,
    DeletionOnlyAdversary,
    MaxDegreeAdversary,
    RandomAdversary,
    StarCenterAdversary,
)
from repro.analysis.invariants import check_theorem2
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal

from tests.conftest import drive


ADVERSARIES = [
    lambda: DeletionOnlyAdversary(seed=3),
    lambda: MaxDegreeAdversary(seed=4),
    lambda: RandomAdversary(seed=5, delete_probability=0.6),
    lambda: CascadeAdversary(seed=6),
    lambda: StarCenterAdversary(seed=7),
]


@pytest.mark.parametrize("adversary_factory", ADVERSARIES)
def test_theorem2_holds_on_regular_graph(adversary_factory):
    graph = nx.random_regular_graph(4, 24, seed=11)
    healer = Xheal(kappa=4, seed=1)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = adversary_factory()
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=25)
    healer.check_invariants()
    verdict = check_theorem2(healer.graph, ghost, kappa=4, exact_limit=14, sample_pairs=80)
    assert verdict.connected
    assert verdict.degree.holds, f"degree violation at {verdict.degree.worst_node}"
    assert verdict.stretch.holds
    assert verdict.expansion.holds
    assert verdict.spectral.holds


@pytest.mark.parametrize("kappa", [2, 4, 6])
def test_degree_bound_scales_with_kappa(kappa):
    graph = nx.random_regular_graph(4, 20, seed=2)
    healer = Xheal(kappa=kappa, seed=9)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = DeletionOnlyAdversary(seed=13)
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=12)
    for node in healer.graph.nodes():
        assert healer.graph.degree(node) <= kappa * ghost.degree(node) + 2 * kappa


def test_star_center_deletion_keeps_constant_expansion():
    # The paper's marquee example: a star healed by Xheal keeps expansion >= ~1,
    # because the leaves are reconnected by an expander, not a tree.
    graph = nx.star_graph(20)
    healer = Xheal(kappa=4, seed=3)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    ghost.record_deletion(0)
    healer.handle_deletion(0)
    verdict = check_theorem2(healer.graph, ghost, kappa=4, exact_limit=0, sample_pairs=100)
    assert verdict.connected
    assert verdict.expansion.healed_expansion >= 0.9


def test_connectivity_never_lost_under_long_churn():
    graph = nx.random_regular_graph(4, 30, seed=5)
    healer = Xheal(kappa=4, seed=6)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = RandomAdversary(seed=21, delete_probability=0.5)
    adversary.bind(graph)
    for timestep in range(60):
        event = adversary.next_event(healer.graph, timestep)
        if event is None:
            break
        if event.is_deletion:
            ghost.record_deletion(event.node)
            healer.handle_deletion(event.node)
        else:
            ghost.record_insertion(event.node, event.neighbors)
            healer.handle_insertion(event.node, event.neighbors)
        assert nx.is_connected(healer.graph)
    healer.check_invariants()


def test_graph_stays_simple():
    graph = nx.random_regular_graph(4, 20, seed=8)
    healer = Xheal(kappa=4, seed=2)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = CascadeAdversary(seed=3)
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=12)
    assert nx.number_of_selfloops(healer.graph) == 0


def test_edge_ownership_consistency_after_churn():
    graph = nx.random_regular_graph(4, 22, seed=9)
    healer = Xheal(kappa=4, seed=4)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = RandomAdversary(seed=17, delete_probability=0.7)
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=30)
    live_cloud_ids = {cloud.cloud_id for cloud in healer.registry.clouds()}
    for u, v, data in healer.graph.edges(data=True):
        for owner in data.get("owners", set()):
            assert owner in live_cloud_ids, f"edge ({u},{v}) owned by dissolved cloud {owner}"
        if not data.get("owners") and not data.get("was_black"):
            pytest.fail(f"orphan healing edge ({u},{v}) with no owner")


def test_bridge_duty_unique_per_node():
    graph = nx.random_regular_graph(4, 24, seed=10)
    healer = Xheal(kappa=4, seed=7)
    healer.initialize(graph)
    ghost = GhostGraph(graph)
    adversary = DeletionOnlyAdversary(seed=19)
    adversary.bind(graph)
    drive(healer, ghost, adversary, steps=18)
    from repro.core.clouds import CloudKind

    membership_count: dict[int, int] = {}
    for cloud in healer.registry.clouds(CloudKind.SECONDARY):
        for node in cloud.members:
            membership_count[node] = membership_count.get(node, 0) + 1
    assert all(count == 1 for count in membership_count.values())
