"""BudgetedHealer: bounded edge swaps per step, deferred-repair accounting.

ISSUE 9 tentpole part 3.  The wrapper models optical-circuit-switch
reconfiguration: the inner healer plans repairs on an unconstrained copy of
the network; the deployed graph executes at most ``budget`` edge changes per
adversarial event, queueing the rest FIFO.  The gap surfaces as the
``deferred_repairs`` / ``budget_stalls`` / ``pending_repairs`` /
``time_to_recover`` summary columns, which must flow through summary rows,
artifact replay, and ``repro report`` untouched.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.budget import BudgetedHealer
from repro.harness.experiment import run_experiment, run_healer_on_trace
from repro.scenarios.registry import HEALERS
from repro.scenarios.spec import ScenarioSpec
from repro.util.validation import ValidationError


def star(n: int = 8) -> nx.Graph:
    return nx.star_graph(n - 1)


# -- construction -------------------------------------------------------------


def test_budgeted_is_registered_and_names_its_inner_healer():
    assert HEALERS.get("budgeted") is BudgetedHealer
    healer = BudgetedHealer(inner="line-heal", budget=3)
    assert healer.name == "budgeted(line-heal,b=3)"
    assert healer.inner_healer.name == "line-heal"


def test_budgeted_rejects_a_zero_budget_and_unknown_inners():
    with pytest.raises(ValidationError):
        BudgetedHealer(budget=0)
    with pytest.raises(Exception):
        BudgetedHealer(inner="no-such-healer")


def test_budgeted_forwards_kappa_and_derives_the_inner_seed():
    healer = BudgetedHealer(inner="xheal", kappa=3, seed=11)
    assert healer.inner_healer.kappa == 3
    other = BudgetedHealer(inner="xheal", kappa=3, seed=11)
    assert type(other.inner_healer) is type(healer.inner_healer)


# -- budget semantics ---------------------------------------------------------


def test_large_budget_tracks_the_inner_healer_exactly():
    """With budget >= any repair size the deployed graph equals the plan."""
    budgeted = BudgetedHealer(inner="line-heal", budget=100, seed=0)
    inner = HEALERS.get("line-heal")(seed=0)
    graph = star(10)
    budgeted.initialize(graph)
    inner.initialize(graph)
    budgeted.handle_deletion(0)
    inner.handle_deletion(0)
    assert nx.utils.graphs_equal(
        nx.Graph(budgeted.graph.edges()), nx.Graph(inner.graph.edges())
    )
    assert budgeted.extra_summary() == {
        "deferred_repairs": 0,
        "budget_stalls": 0,
        "pending_repairs": 0,
        "time_to_recover": 0,
    }


def test_small_budget_defers_and_later_steps_drain_the_queue():
    """Deleting a star centre plans n-2 line edges; budget 2 applies 2."""
    healer = BudgetedHealer(inner="line-heal", budget=2, seed=0)
    healer.initialize(star(10))
    report = healer.handle_deletion(0)
    assert len(report.edges_added) == 2
    extra = healer.extra_summary()
    # line-heal reconnects 9 leaves in a cycle: 9 edges planned, 2 applied.
    assert extra["pending_repairs"] == 7
    assert extra["deferred_repairs"] == 7
    assert extra["budget_stalls"] == 1
    assert extra["time_to_recover"] == 1
    # Insertions also drain: two more per event until the queue empties.
    node = 100
    while healer.extra_summary()["pending_repairs"] > 0:
        healer.handle_insertion(node, [1])
        node += 1
    extra = healer.extra_summary()
    assert extra["pending_repairs"] == 0
    assert extra["deferred_repairs"] == 7  # counted once, at the step they missed
    assert extra["budget_stalls"] == 4  # 7 pending -> 5 -> 3 -> 1 -> 0
    assert extra["time_to_recover"] == 5  # deletion step + 4 drain steps


def test_opposite_queued_ops_annihilate():
    healer = BudgetedHealer(inner="line-heal", budget=1, seed=0)
    healer.initialize(star(8))
    healer.handle_deletion(0)
    before = healer.extra_summary()["pending_repairs"]
    healer._enqueue("remove", *sorted(healer._pending_entries()[0][2]))
    assert healer.extra_summary()["pending_repairs"] == before - 1


def test_stale_ops_for_dead_endpoints_are_dropped_without_budget_charge():
    healer = BudgetedHealer(inner="line-heal", budget=2, seed=0)
    healer.initialize(star(10))
    healer.handle_deletion(0)
    # Kill a leaf whose queued repair edges now reference a dead endpoint.
    pending_edges = [entry[2] for entry in healer._pending_entries()]
    victim = pending_edges[0][0]
    report = healer.handle_deletion(victim)
    # The drain still spent its full budget on *valid* ops.
    applied = len(report.edges_added) + len(
        [e for e in report.edges_removed if victim not in e]
    )
    assert applied == 2


def test_deployed_graph_is_what_the_harness_measures():
    spec = ScenarioSpec(
        healer="budgeted",
        healer_kwargs={"inner": "xheal", "budget": 1},
        adversary="deletion-only",
        topology="random-regular",
        topology_kwargs={"n": 12, "degree": 4},
        timesteps=3,
        seed=2,
        exact_expansion_limit=0,
        stretch_sample_pairs=5,
    )
    result = run_experiment(spec.compile())
    row = result.summary_row()
    assert row["healer"] == "budgeted(xheal,b=1)"
    for column in ("deferred_repairs", "budget_stalls", "pending_repairs", "time_to_recover"):
        assert isinstance(row[column], int)
    # Ordinary healers keep their rows column-stable (golden-suite safety).
    assert "deferred_repairs" not in run_experiment(
        spec.with_overrides(healer="xheal", healer_kwargs={}).compile()
    ).summary_row()


def test_budgeted_replay_reproduces_the_run_including_extra_columns():
    spec = ScenarioSpec(
        healer="budgeted",
        healer_kwargs={"inner": "xheal", "budget": 2},
        adversary="domain-kill",
        adversary_kwargs={"kill_every": 2, "min_nodes": 5},
        topology="pod-mesh",
        topology_kwargs={"pods": 3, "nodes_per_pod": 4},
        timesteps=6,
        seed=11,
        exact_expansion_limit=0,
        stretch_sample_pairs=10,
    )
    config = spec.compile()
    original = run_experiment(config)
    healer = HEALERS.get(spec.healer)(**spec.component_kwargs("healer"))
    replayed = run_healer_on_trace(
        healer,
        spec.build_initial_graph(),
        original.trace,
        kappa=spec.kappa,
        exact_expansion_limit=spec.exact_expansion_limit,
        stretch_sample_pairs=spec.stretch_sample_pairs,
        seed=spec.seed,
        adversary_name=original.adversary_name,
    )
    assert replayed.summary_row() == original.summary_row()
    assert replayed.healer_extra == original.healer_extra


def test_initialize_resets_the_queue_and_counters():
    healer = BudgetedHealer(inner="line-heal", budget=1, seed=0)
    healer.initialize(star(8))
    healer.handle_deletion(0)
    assert healer.extra_summary()["pending_repairs"] > 0
    healer.initialize(star(8))
    assert healer.extra_summary() == {
        "deferred_repairs": 0,
        "budget_stalls": 0,
        "pending_repairs": 0,
        "time_to_recover": 0,
    }
