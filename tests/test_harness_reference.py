"""Equivalence suite pinning the data-oriented core to the pre-rewrite code.

``tests/golden/reference_summaries.json`` holds ``summary_row()`` outputs for
24 scenarios, generated with the original pure-NetworkX simulation core (see
``scripts/regen_reference_golden.py``).  Re-running the same specs through
the current struct-of-arrays core must reproduce every row byte for byte —
node iteration order, metric floats, verdicts, everything.

A second layer cross-checks the *internal* fast paths against their reference
implementations on live runs: the incremental degree-ratio tracker vs the
full per-node scan, and the materialized ``nx.Graph`` vs the store.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.trackers import DegreeRatioTracker
from repro.core.ghost import GhostGraph
from repro.core.xheal import Xheal
from repro.harness.experiment import run_experiment
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.registry import ADVERSARIES

GOLDEN = Path(__file__).parent / "golden" / "reference_summaries.json"


def _golden_entries():
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize(
    "entry",
    _golden_entries(),
    ids=lambda entry: f"{entry['spec']['healer']}@{entry['spec'].get('topology')}"
    f"/{entry['spec'].get('adversary')}-s{entry['spec'].get('seed', 0)}",
)
def test_summary_rows_match_pre_rewrite_reference(entry):
    spec = ScenarioSpec.from_dict(entry["spec"])
    result = run_experiment(spec.validate().compile())
    assert result.summary_row() == entry["summary"]


def test_incremental_tracker_matches_reference_scan():
    """The vectorized tracker and the Python reference scan agree event by event."""
    spec = ScenarioSpec(
        healer="xheal",
        topology="random-regular",
        topology_kwargs={"n": 24, "degree": 4},
        adversary="churn",
        timesteps=60,
        seed=13,
    )
    config = spec.validate().compile()
    healer = config.healer_factory()
    healer.initialize(config.initial_graph)
    ghost = GhostGraph(config.initial_graph)
    adversary = config.adversary_factory()
    adversary.bind(config.initial_graph)

    fast = DegreeRatioTracker(kappa=config.kappa)
    reference = DegreeRatioTracker(kappa=config.kappa)
    fast.attach_store(healer.graph_store, ghost)

    for timestep in range(1, config.timesteps + 1):
        event = adversary.next_event(healer.graph_store, timestep)
        if event is None:
            break
        if event.is_insertion:
            ghost.record_insertion(event.node, event.neighbors)
            healer.handle_insertion(event.node, event.neighbors)
            fast.record_insertion(event.node, event.neighbors)
        else:
            ghost.record_deletion(event.node)
            healer.handle_deletion(event.node)
        worst_fast = fast.observe_store()
        worst_reference = reference.observe(healer.graph, ghost)
        assert worst_fast == worst_reference
        assert fast.max_ratio_seen == reference.max_ratio_seen
        assert fast.worst_node == reference.worst_node
        assert fast.max_additive_violation == reference.max_additive_violation
        assert fast.bound_respected == reference.bound_respected


def test_materialized_graph_matches_store_after_churn():
    """The lazy nx materializer mirrors the store's nodes, edges and attrs."""
    spec = ScenarioSpec(
        healer="xheal",
        topology="erdos-renyi",
        topology_kwargs={"n": 20, "average_degree": 4.0},
        adversary="random",
        timesteps=40,
        seed=3,
    )
    config = spec.validate().compile()
    healer = config.healer_factory()
    healer.initialize(config.initial_graph)
    adversary = config.adversary_factory()
    adversary.bind(config.initial_graph)

    for timestep in range(1, config.timesteps + 1):
        event = adversary.next_event(healer.graph_store, timestep)
        if event is None:
            break
        if event.is_insertion:
            healer.handle_insertion(event.node, event.neighbors)
        else:
            healer.handle_deletion(event.node)

    store = healer.graph_store
    graph = healer.graph
    assert graph is healer.graph  # cached while the version is unchanged
    assert list(graph.nodes()) == list(store.nodes())
    assert graph.number_of_edges() == store.number_of_edges()
    for u, v, data in graph.edges(data=True):
        assert store.has_edge(u, v)
        assert data["color"] == store.color(u, v)
        assert data["was_black"] is store.was_black(u, v)
        assert data["owners"] == store.owners_of_slot(store.edge_slot(u, v))
    for node in store.nodes():
        assert graph.degree(node) == store.degree(node)


def test_store_speaks_the_adversary_graph_dialect():
    """Every registered adversary can drive the store directly (no nx view)."""
    import networkx as nx

    initial = nx.random_regular_graph(4, 16, seed=2)
    for name in sorted(ADVERSARIES.names()):
        if name in ("chaos-flaky", "scripted", "trace-replay"):
            continue  # these require constructor arguments beyond a seed
        healer = Xheal(kappa=4, seed=1)
        healer.initialize(initial)
        adversary = ADVERSARIES.get(name)(seed=5)
        adversary.bind(initial)
        for timestep in range(1, 13):
            batch = adversary.next_events(healer.graph_store, timestep)
            if not batch:
                break
            for event in batch:
                if event.is_insertion:
                    healer.handle_insertion(event.node, event.neighbors)
                else:
                    healer.handle_deletion(event.node)
        healer.check_invariants()
