"""Tests for repro.core.colors and repro.core.ghost."""

import networkx as nx
import pytest

from repro.core.colors import BLACK, ColorKind, EdgeColor, primary_color, secondary_color
from repro.core.ghost import GhostGraph
from repro.util.validation import ValidationError


def test_black_is_black():
    assert BLACK.is_black
    assert not BLACK.is_primary
    assert not BLACK.is_secondary
    assert str(BLACK) == "black"


def test_primary_and_secondary_colors():
    red = primary_color(7)
    orange = secondary_color(7)
    assert red.is_primary and not red.is_secondary
    assert orange.is_secondary and not orange.is_primary
    assert red != orange
    assert "red" in str(red) and "orange" in str(orange)


def test_colors_hashable_and_unique_per_tag():
    assert primary_color(1) == EdgeColor(ColorKind.PRIMARY, 1)
    assert primary_color(1) != primary_color(2)
    assert len({primary_color(i) for i in range(5)}) == 5


def test_ghost_records_initial_graph():
    graph = nx.cycle_graph(5)
    ghost = GhostGraph(graph)
    assert ghost.number_of_nodes() == 5
    assert ghost.degree(0) == 2


def test_ghost_insertion_grows_graph():
    ghost = GhostGraph(nx.path_graph(3))
    ghost.record_insertion(10, [0, 2])
    assert ghost.degree(10) == 2
    assert ghost.graph.has_edge(10, 0)


def test_ghost_insertion_validation():
    ghost = GhostGraph(nx.path_graph(3))
    with pytest.raises(ValidationError):
        ghost.record_insertion(0, [1])  # already exists
    with pytest.raises(ValidationError):
        ghost.record_insertion(10, [99])  # unknown neighbour


def test_ghost_deletion_does_not_remove_edges():
    graph = nx.star_graph(4)
    ghost = GhostGraph(graph)
    ghost.record_deletion(0)
    assert ghost.degree(0) == 4  # ghost keeps the deleted node's edges
    assert 0 in ghost.deleted_nodes()
    assert 0 not in ghost.alive_nodes()


def test_ghost_deletion_unknown_rejected():
    ghost = GhostGraph(nx.path_graph(3))
    with pytest.raises(ValidationError):
        ghost.record_deletion(42)


def test_alive_subgraph_excludes_deleted():
    graph = nx.cycle_graph(6)
    ghost = GhostGraph(graph)
    ghost.record_deletion(0)
    alive = ghost.alive_subgraph()
    assert 0 not in alive
    assert alive.number_of_nodes() == 5


def test_ghost_degree_of_unknown_node_is_zero():
    ghost = GhostGraph(nx.path_graph(3))
    assert ghost.degree(500) == 0


def test_ghost_copy_is_independent():
    ghost = GhostGraph(nx.path_graph(3))
    clone = ghost.copy()
    clone.record_deletion(0)
    assert 0 not in clone.alive_nodes()
    assert 0 in ghost.alive_nodes()
