"""Tests for repro.util.validation and repro.util.eventlog."""

import pytest

from repro.util.eventlog import EventKind, EventLog
from repro.util.validation import (
    ValidationError,
    require,
    require_in,
    require_non_negative,
    require_positive,
    require_probability,
)


def test_require_passes_and_fails():
    require(True, "fine")
    with pytest.raises(ValidationError, match="broken"):
        require(False, "broken")


def test_require_positive():
    require_positive(1, "x")
    with pytest.raises(ValidationError):
        require_positive(0, "x")


def test_require_non_negative():
    require_non_negative(0, "x")
    with pytest.raises(ValidationError):
        require_non_negative(-1, "x")


def test_require_probability():
    require_probability(0.5, "p")
    with pytest.raises(ValidationError):
        require_probability(1.5, "p")


def test_require_in():
    require_in("a", {"a", "b"}, "opt")
    with pytest.raises(ValidationError):
        require_in("c", {"a", "b"}, "opt")


def test_eventlog_record_and_filter():
    log = EventLog()
    log.record(1, EventKind.INSERT, node=5)
    log.record(2, EventKind.DELETE, node=5)
    log.record(2, EventKind.CLOUD_CREATED, cloud=1)
    assert len(log) == 3
    assert log.count(EventKind.DELETE) == 1
    assert len(log.events(timestep=2)) == 2
    assert log.events(kind=EventKind.INSERT)[0].payload["node"] == 5


def test_eventlog_clear_and_indexing():
    log = EventLog()
    event = log.record(0, EventKind.NOTE, text="hello")
    assert log[0] is event
    log.clear()
    assert len(log) == 0


def test_eventlog_iteration_order():
    log = EventLog()
    for timestep in range(5):
        log.record(timestep, EventKind.NOTE)
    assert [event.timestep for event in log] == list(range(5))
