"""Tests for repro.spectral.laplacian."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.spectral.laplacian import (
    algebraic_connectivity,
    laplacian_matrix,
    laplacian_spectrum,
    normalized_laplacian_second_eigenvalue,
    spectral_gap,
    theorem2_lambda_lower_bound,
)
from repro.util.validation import ValidationError


def test_laplacian_matrix_row_sums_zero():
    graph = nx.cycle_graph(5)
    matrix = laplacian_matrix(graph)
    assert np.allclose(matrix.sum(axis=1), 0.0)


def test_spectrum_smallest_eigenvalue_zero():
    graph = nx.path_graph(6)
    spectrum = laplacian_spectrum(graph)
    assert spectrum[0] == pytest.approx(0.0, abs=1e-9)


def test_complete_graph_lambda2_is_n():
    graph = nx.complete_graph(7)
    assert algebraic_connectivity(graph) == pytest.approx(7.0, rel=1e-6)


def test_cycle_lambda2_closed_form():
    n = 10
    graph = nx.cycle_graph(n)
    expected = 2 - 2 * math.cos(2 * math.pi / n)
    assert algebraic_connectivity(graph) == pytest.approx(expected, rel=1e-6)


def test_disconnected_graph_lambda2_zero():
    graph = nx.Graph([(0, 1), (2, 3)])
    assert algebraic_connectivity(graph) == 0.0


def test_lambda2_positive_iff_connected():
    connected = nx.path_graph(5)
    assert algebraic_connectivity(connected) > 0


def test_sparse_path_agrees_with_dense():
    graph = nx.random_regular_graph(4, 60, seed=1)
    dense = algebraic_connectivity(graph, sparse_threshold=10**6)
    sparse = algebraic_connectivity(graph, sparse_threshold=10)
    assert sparse == pytest.approx(dense, rel=1e-4)


def test_normalized_lambda2_in_unit_range():
    graph = nx.random_regular_graph(4, 20, seed=2)
    value = normalized_laplacian_second_eigenvalue(graph)
    assert 0.0 < value <= 2.0


def test_spectral_gap_half_normalized():
    graph = nx.complete_graph(6)
    assert spectral_gap(graph) == pytest.approx(
        normalized_laplacian_second_eigenvalue(graph) / 2
    )


def test_single_node_rejected():
    graph = nx.Graph()
    graph.add_node(0)
    with pytest.raises(ValidationError):
        algebraic_connectivity(graph)


def test_theorem2_bound_formula_cases():
    # Case 2 dominates when lambda_ghost is tiny.
    bound_small = theorem2_lambda_lower_bound(0.0001, 2, 4, 4)
    assert bound_small == pytest.approx((0.0001**2) * 2 / (8 * (4 * 4 + 8) ** 2))
    # Case 2's constant bound caps the value when lambda_ghost is large.
    bound_large = theorem2_lambda_lower_bound(10.0, 2, 4, 4)
    assert bound_large == pytest.approx(1.0 / (2 * (4 * 4 + 8) ** 2))


def test_theorem2_bound_validation():
    with pytest.raises(ValidationError):
        theorem2_lambda_lower_bound(1.0, 1, 0, 4)
    with pytest.raises(ValidationError):
        theorem2_lambda_lower_bound(1.0, 1, 4, 0)


def test_expander_lambda_bounded_away_from_zero():
    graph = nx.random_regular_graph(6, 30, seed=3)
    assert algebraic_connectivity(graph) > 0.5
