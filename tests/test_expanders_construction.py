"""Tests for repro.expanders.construction and verification."""

import networkx as nx
import pytest

from repro.expanders.construction import (
    build_clique_edges,
    build_expander_edges,
    expander_or_clique,
    hamilton_cycle_count,
)
from repro.expanders.verification import check_expander, empirical_expansion_profile
from repro.util.rng import SeededRng
from repro.util.validation import ValidationError


def test_clique_edges_count():
    edges = build_clique_edges(range(5))
    assert len(edges) == 10
    assert (0, 4) in edges


def test_clique_edges_degenerate():
    assert build_clique_edges([]) == set()
    assert build_clique_edges([3]) == set()
    assert build_clique_edges([3, 3]) == set()


def test_hamilton_cycle_count_rounding():
    assert hamilton_cycle_count(2) == 1
    assert hamilton_cycle_count(3) == 2
    assert hamilton_cycle_count(4) == 2
    assert hamilton_cycle_count(8) == 4
    with pytest.raises(ValidationError):
        hamilton_cycle_count(1)


def test_expander_edges_degree_bound():
    nodes = list(range(20))
    edges = build_expander_edges(nodes, kappa=4, rng=SeededRng(1))
    graph = nx.Graph(edges)
    assert max(degree for _, degree in graph.degree()) <= 4
    assert nx.is_connected(graph)


def test_expander_edges_needs_three_nodes():
    with pytest.raises(ValidationError):
        build_expander_edges([1, 2], kappa=4, rng=SeededRng(0))


def test_expander_or_clique_small_sets_give_cliques():
    edges = expander_or_clique(list(range(4)), kappa=4, rng=SeededRng(0))
    assert len(edges) == 6  # K4
    assert expander_or_clique([7], kappa=4, rng=SeededRng(0)) == set()
    assert expander_or_clique([], kappa=4, rng=SeededRng(0)) == set()


def test_expander_or_clique_large_sets_respect_kappa():
    edges = expander_or_clique(list(range(30)), kappa=4, rng=SeededRng(2))
    graph = nx.Graph(edges)
    assert max(degree for _, degree in graph.degree()) <= 4
    assert nx.is_connected(graph)


def test_expander_or_clique_threshold_boundary():
    # kappa + 1 nodes -> clique; kappa + 2 -> expander path.
    kappa = 4
    clique_edges = expander_or_clique(list(range(kappa + 1)), kappa, SeededRng(0))
    assert len(clique_edges) == (kappa + 1) * kappa // 2
    expander_edges = expander_or_clique(list(range(kappa + 2)), kappa, SeededRng(0))
    graph = nx.Graph(expander_edges)
    assert max(degree for _, degree in graph.degree()) <= kappa


def test_check_expander_on_good_and_bad_graphs():
    good = nx.random_regular_graph(6, 20, seed=1)
    bad = nx.path_graph(20)
    assert check_expander(good, threshold=1.0).is_expander
    assert not check_expander(bad, threshold=1.0).is_expander


def test_check_expander_tiny_graph():
    graph = nx.Graph()
    graph.add_node(0)
    assert check_expander(graph).is_expander is False


def test_empirical_expansion_profile_shape():
    profile = empirical_expansion_profile(n=14, d=2, trials=5, base_seed=3)
    assert profile.trials == 5
    assert 0.0 <= profile.success_fraction <= 1.0
    assert profile.min_expansion <= profile.mean_expansion
    assert profile.threshold == pytest.approx(1.0)


def test_empirical_profile_success_improves_with_d():
    low = empirical_expansion_profile(n=16, d=1, trials=6, threshold=1.5, base_seed=1)
    high = empirical_expansion_profile(n=16, d=4, trials=6, threshold=1.5, base_seed=1)
    assert high.success_fraction >= low.success_fraction
    assert high.mean_expansion > low.mean_expansion
